// Figure 9 (a-f): modeled (cost-model) versus measured performance of the
// six join-phase kernels, each swept over the number of radix-bits at
// several cardinalities:
//   a) Radix-Cluster            b) Partitioned Hash-Join
//   c) Clustered Positional Join d) Radix-Decluster (w = 32 rule)
//   e) Left Jive-Join            f) Right Jive-Join
// Each benchmark reports measured wall time plus a "modeled_ms" counter
// from the Appendix-A cost model; the reproduction claim is that the two
// move together (optima and cliffs at the same B).

#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "bench_common.h"
#include "cluster/partition_plan.h"
#include "cluster/radix_cluster.h"
#include "cluster/radix_sort.h"
#include "common/hash.h"
#include "common/rng.h"
#include "costmodel/models.h"
#include "decluster/radix_decluster.h"
#include "decluster/window.h"
#include "join/hash_join.h"
#include "join/jive_join.h"
#include "join/partitioned_hash_join.h"
#include "join/positional_join.h"
#include "workload/distributions.h"
#include "workload/generator.h"

namespace {

using namespace radix;  // NOLINT

const costmodel::CpuCosts& Cpu() {
  static costmodel::CpuCosts cpu = costmodel::CpuCosts::Default();
  return cpu;
}

size_t CapN(size_t n) { return radix::bench::ScaledN(n, 1'000'000); }

// ---------------------------------------------------------------- Fig 9a
void BM_RadixCluster(benchmark::State& state) {
  size_t n = CapN(static_cast<size_t>(state.range(0)));
  radix_bits_t bits = static_cast<radix_bits_t>(state.range(1));
  const auto& hw = radix::bench::BenchHw();
  uint32_t passes = cluster::PassesFor(bits, hw);

  std::vector<cluster::KeyOid> data(n), scratch(n);
  Rng rng(1);
  for (size_t i = 0; i < n; ++i) {
    data[i] = {static_cast<value_t>(rng.Below(n)), static_cast<oid_t>(i)};
  }
  auto radix_of = [](const cluster::KeyOid& t) { return KeyHash{}(t.key); };
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<cluster::KeyOid> work = data;
    state.ResumeTiming();
    cluster::ClusterSpec spec{.total_bits = bits, .ignore_bits = 0,
                              .passes = passes};
    simcache::NoTracer tracer;
    auto borders = cluster::RadixClusterMultiPass(
        work.data(), scratch.data(), n, radix_of, spec, tracer);
    benchmark::DoNotOptimize(borders.offsets.data());
  }
  state.counters["B"] = bits;
  state.counters["N"] = static_cast<double>(n);
  state.counters["modeled_ms"] =
      costmodel::RadixClusterCost(hw, Cpu(), n, sizeof(cluster::KeyOid), bits,
                                  passes)
          .seconds *
      1e3;
}

// ---------------------------------------------------------------- Fig 9b
void BM_PartitionedHashJoin(benchmark::State& state) {
  size_t n = CapN(static_cast<size_t>(state.range(0)));
  radix_bits_t bits = static_cast<radix_bits_t>(state.range(1));
  const auto& hw = radix::bench::BenchHw();
  workload::JoinWorkloadSpec spec;
  spec.cardinality = n;
  spec.num_attrs = 1;
  spec.build_nsm = false;
  auto w = workload::MakeJoinWorkload(spec);
  join::PartitionedHashJoinOptions options;
  options.radix_bits = bits;
  for (auto _ : state) {
    join::JoinIndex ji = join::PartitionedHashJoin(
        w.dsm_left.key().span(), w.dsm_right.key().span(), hw, options);
    benchmark::DoNotOptimize(ji.data());
  }
  state.counters["B"] = bits;
  state.counters["N"] = static_cast<double>(n);
  state.counters["modeled_ms"] =
      costmodel::PartitionedHashJoinCost(hw, Cpu(), n, n,
                                         sizeof(cluster::KeyOid), bits)
          .seconds *
      1e3;
}

// ---------------------------------------------------------------- Fig 9c
void BM_ClusteredPositionalJoin(benchmark::State& state) {
  size_t n = CapN(static_cast<size_t>(state.range(0)));
  radix_bits_t bits =
      std::min<radix_bits_t>(static_cast<radix_bits_t>(state.range(1)),
                             SignificantBits(n));
  const auto& hw = radix::bench::BenchHw();

  std::vector<oid_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  Rng rng(2);
  workload::Shuffle(ids.data(), n, rng);
  radix_bits_t sig = SignificantBits(n);
  cluster::ClusterSpec cspec{
      .total_bits = bits,
      .ignore_bits = static_cast<radix_bits_t>(sig - bits),
      .passes = cluster::PassesFor(bits, hw)};
  cluster::RadixCluster(std::span<oid_t>(ids),
                        [](oid_t v) { return uint64_t{v}; }, cspec);
  auto column = workload::MakeBaseColumn(n, 1);
  std::vector<value_t> out(n);
  for (auto _ : state) {
    join::PositionalJoin<value_t>(ids, column.span(), std::span<value_t>(out));
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["B"] = bits;
  state.counters["N"] = static_cast<double>(n);
  state.counters["modeled_ms"] =
      costmodel::ClusteredPositionalJoinCost(hw, Cpu(), n, n, sizeof(value_t),
                                             bits, false)
          .seconds *
      1e3;
}

// ---------------------------------------------------------------- Fig 9d
void BM_RadixDecluster(benchmark::State& state) {
  size_t n = CapN(static_cast<size_t>(state.range(0)));
  radix_bits_t bits =
      std::min<radix_bits_t>(static_cast<radix_bits_t>(state.range(1)),
                             SignificantBits(n));
  const auto& hw = radix::bench::BenchHw();

  // Paper-distribution input: per-cluster positions ascend but spread over
  // the whole result (see bench_common.h).
  radix::bench::DeclusterInput in =
      radix::bench::MakeDeclusterInput(n, bits, 3);
  // The paper's w = 32 rule: window sized so each cluster contributes >= 32
  // tuples per sweep, capped at the cache.
  size_t window = decluster::WindowPolicy::ChooseWindowElems(
      hw, sizeof(value_t), in.borders.num_clusters(), n);
  std::vector<value_t> result(n);
  for (auto _ : state) {
    decluster::RadixDecluster<value_t>(in.values, in.ids,
                                       decluster::MakeCursors(in.borders),
                                       window, std::span<value_t>(result));
    benchmark::DoNotOptimize(result.data());
  }
  state.counters["B"] = bits;
  state.counters["N"] = static_cast<double>(n);
  state.counters["modeled_ms"] =
      costmodel::RadixDeclusterCost(hw, Cpu(), n, sizeof(value_t), bits,
                                    window)
          .seconds *
      1e3;
}

// ------------------------------------------------------------- Fig 9e/9f
struct JiveFixture {
  std::vector<cluster::OidPair> index;
  storage::Column<value_t> left_col;
  storage::Column<value_t> right_col;
};

JiveFixture MakeJive(size_t n) {
  JiveFixture f;
  Rng rng(4);
  f.index.resize(n);
  for (size_t i = 0; i < n; ++i) {
    f.index[i] = {static_cast<oid_t>(i), static_cast<oid_t>(rng.Below(n))};
  }
  cluster::RadixSortJoinIndex(std::span<cluster::OidPair>(f.index),
                              static_cast<oid_t>(n), true);
  f.left_col = workload::MakeBaseColumn(n, 1);
  f.right_col = workload::MakeBaseColumn(n, 2);
  return f;
}

void BM_LeftJiveJoin(benchmark::State& state) {
  size_t n = CapN(static_cast<size_t>(state.range(0)));
  radix_bits_t bits =
      std::min<radix_bits_t>(static_cast<radix_bits_t>(state.range(1)),
                             SignificantBits(n));
  JiveFixture f = MakeJive(n);
  std::vector<value_t> left_out(n);
  join::JiveJoinOptions options;
  options.cluster_bits = bits;
  for (auto _ : state) {
    join::JiveIntermediate inter = join::LeftJiveJoinDsm(
        f.index, {f.left_col.span()}, {std::span<value_t>(left_out)},
        static_cast<oid_t>(n), options);
    benchmark::DoNotOptimize(inter.entries.data());
  }
  state.counters["B"] = bits;
  state.counters["N"] = static_cast<double>(n);
  state.counters["modeled_ms"] =
      costmodel::LeftJiveJoinCost(radix::bench::BenchHw(), Cpu(), n, n,
                                  sizeof(value_t), bits)
          .seconds *
      1e3;
}

void BM_RightJiveJoin(benchmark::State& state) {
  size_t n = CapN(static_cast<size_t>(state.range(0)));
  radix_bits_t bits =
      std::min<radix_bits_t>(static_cast<radix_bits_t>(state.range(1)),
                             SignificantBits(n));
  JiveFixture f = MakeJive(n);
  std::vector<value_t> left_out(n), right_out(n);
  join::JiveJoinOptions options;
  options.cluster_bits = bits;
  join::JiveIntermediate inter = join::LeftJiveJoinDsm(
      f.index, {f.left_col.span()}, {std::span<value_t>(left_out)},
      static_cast<oid_t>(n), options);
  for (auto _ : state) {
    state.PauseTiming();
    join::JiveIntermediate work = inter;  // phase 2 sorts in place
    state.ResumeTiming();
    join::RightJiveJoinDsm(work, {f.right_col.span()},
                           {std::span<value_t>(right_out)});
    benchmark::DoNotOptimize(right_out.data());
  }
  state.counters["B"] = bits;
  state.counters["N"] = static_cast<double>(n);
  state.counters["modeled_ms"] =
      costmodel::RightJiveJoinCost(radix::bench::BenchHw(), Cpu(), n, n,
                                   sizeof(value_t), bits)
          .seconds *
      1e3;
}

void Args(benchmark::internal::Benchmark* b) {
  for (int64_t n : {250'000, 1'000'000, 4'000'000}) {
    for (int64_t bits = 0; bits <= 20; bits += 4) {
      b->Args({n, bits});
    }
  }
  b->Unit(benchmark::kMillisecond)->Iterations(1);
}

}  // namespace

BENCHMARK(BM_RadixCluster)->Apply(Args);
BENCHMARK(BM_PartitionedHashJoin)->Apply(Args);
BENCHMARK(BM_ClusteredPositionalJoin)->Apply(Args);
BENCHMARK(BM_RadixDecluster)->Apply(Args);
BENCHMARK(BM_LeftJiveJoin)->Apply(Args);
BENCHMARK(BM_RightJiveJoin)->Apply(Args);

BENCHMARK_MAIN();
