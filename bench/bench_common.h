#ifndef RADIX_BENCH_BENCH_COMMON_H_
#define RADIX_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/radix_cluster.h"
#include "common/rng.h"
#include "engine/engine.h"
#include "hardware/memory_hierarchy.h"
#include "workload/distributions.h"

namespace radix::bench {

/// RADIX_BENCH_QUICK=1 caps cardinalities so the full harness finishes in
/// CI time; shapes survive because all thresholds are cache-relative.
inline bool QuickMode() {
  const char* env = std::getenv("RADIX_BENCH_QUICK");
  return env != nullptr && env[0] == '1';
}

/// Cap a paper cardinality in quick mode.
inline size_t ScaledN(size_t paper_n, size_t quick_cap = 1u << 20) {
  return QuickMode() ? std::min(paper_n, quick_cap) : paper_n;
}

/// The hierarchy used for planning (cluster bits, window sizes) and for the
/// cost-model ("modeled") counters. RADIX_BENCH_HW=p4 pins the paper's
/// Pentium 4 parameters; default is the running machine's geometry.
inline const hardware::MemoryHierarchy& BenchHw() {
  static const hardware::MemoryHierarchy hw = [] {
    const char* env = std::getenv("RADIX_BENCH_HW");
    if (env != nullptr && std::string(env) == "p4") {
      return hardware::MemoryHierarchy::Pentium4();
    }
    return hardware::MemoryHierarchy::Detect();
  }();
  return hw;
}

/// Session engines for the query-level harnesses (Fig. 10 and the
/// materializing-vs-streaming ablation): one engine per requested thread
/// count, constructed once per process on the BenchHw() profile, so
/// benchmark iterations measure queries — not thread spawn or hierarchy
/// detection. Benchmarks are single-threaded drivers; no locking needed.
inline radix::engine::Engine& BenchEngine(size_t threads = 1) {
  static std::map<size_t, std::unique_ptr<radix::engine::Engine>> engines;
  std::unique_ptr<radix::engine::Engine>& eng = engines[threads];
  if (eng == nullptr) {
    radix::engine::EngineConfig cfg;
    cfg.hierarchy = BenchHw();
    cfg.num_threads = threads;
    eng = std::make_unique<radix::engine::Engine>(std::move(cfg));
  }
  return *eng;
}

/// A Radix-Decluster input with the *paper's* distribution (Fig. 4): the
/// result positions (ids) are what remains after clustering the join index
/// by the smaller table's oids. Within each cluster the positions ascend,
/// but they are spread over the whole result range — NOT contiguous — which
/// is precisely why the insertion window matters. (Clustering a permutation
/// on its own upper bits would give contiguous per-cluster ranges and make
/// any window look equally good.)
struct DeclusterInput {
  std::vector<value_t> values;  ///< clustered payload (CLUST_VALUES)
  std::vector<oid_t> ids;       ///< clustered result positions (CLUST_RESULT)
  cluster::ClusterBorders borders;
};

inline DeclusterInput MakeDeclusterInput(size_t n, radix_bits_t bits,
                                         uint64_t seed) {
  struct KeyPos {
    oid_t key;  // foreign oid the join index is clustered on
    oid_t pos;  // result position
  };
  Rng rng(seed);
  std::vector<KeyPos> pairs(n);
  for (size_t i = 0; i < n; ++i) {
    pairs[i] = {static_cast<oid_t>(rng.Below(n)), static_cast<oid_t>(i)};
  }
  radix_bits_t sig = SignificantBits(n == 0 ? 1 : n);
  radix_bits_t b = bits > sig ? sig : bits;
  cluster::ClusterSpec spec{.total_bits = b,
                            .ignore_bits = static_cast<radix_bits_t>(sig - b),
                            .passes = b > 11 ? 2u : 1u};
  DeclusterInput in;
  std::vector<KeyPos> scratch(n);
  simcache::NoTracer tracer;
  auto radix_of = [](const KeyPos& p) -> uint64_t { return p.key; };
  in.borders = cluster::RadixClusterMultiPass(pairs.data(), scratch.data(), n,
                                              radix_of, spec, tracer);
  in.ids.resize(n);
  in.values.resize(n);
  for (size_t i = 0; i < n; ++i) {
    in.ids[i] = pairs[i].pos;
    // Payload that verification can recompute from the result position.
    in.values[i] = static_cast<value_t>(pairs[i].pos * 7 + 3);
  }
  return in;
}

}  // namespace radix::bench

#endif  // RADIX_BENCH_BENCH_COMMON_H_
