// Figure 8: DSM post-projection strategy comparison — unsorted (u), sorted
// (s), partial-clustered (c), and declustered (d) — versus the number of
// projection attributes pi, at cardinalities 500K and 8M.
//
// Expected shapes (paper §4.1):
//  * N = 500K (columns ~2MB, larger than a 512KB cache but modest):
//    reordering wins over unsorted;
//  * N = 8M: unsorted loses by a large factor (paper quotes ~10x at
//    pi = 256); c beats s at small pi, s wins past pi ≈ 16 (the one-off
//    sort amortizes); d (decluster) is costlier than c but far better than
//    u — and d is the only option besides u for the *second* table.

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "project/dsm_post.h"
#include "workload/generator.h"

namespace {

using namespace radix;  // NOLINT
using project::SideStrategy;

/// One (ids, columns) fixture per cardinality, shared across the sweep.
struct Fixture {
  std::vector<oid_t> ids;  // random join-index side, unclustered
  storage::DsmRelation table{"src", 0, 1};

  explicit Fixture(size_t n, size_t max_pi) {
    Rng rng(11);
    ids.resize(n);
    for (auto& id : ids) id = static_cast<oid_t>(rng.Below(n));
    table = storage::DsmRelation("src", n, max_pi + 1);
    for (size_t a = 1; a <= max_pi; ++a) {
      auto& col = table.attr(a);
      for (size_t i = 0; i < n; ++i) {
        col[i] = workload::PayloadValue(static_cast<value_t>(i), a);
      }
    }
  }
};

constexpr size_t kMaxPi = 64;

Fixture& FixtureFor(size_t n) {
  static Fixture small(radix::bench::ScaledN(500'000), kMaxPi);
  static Fixture large(radix::bench::ScaledN(8'000'000, 2'000'000), kMaxPi);
  return n <= small.ids.size() ? small : large;
}

void RunStrategy(benchmark::State& state, SideStrategy strategy) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t pi = static_cast<size_t>(state.range(1));
  Fixture& f = FixtureFor(n);
  n = f.ids.size();

  std::vector<std::span<const value_t>> columns(pi);
  std::vector<storage::Column<value_t>> out_storage(pi);
  std::vector<std::span<value_t>> out(pi);
  for (size_t a = 0; a < pi; ++a) {
    columns[a] = f.table.attr(1 + a).span();
    out_storage[a].Resize(n);
    out[a] = out_storage[a].span();
  }
  for (auto _ : state) {
    // Strategies that reorder ids mutate them; copy per iteration (copy
    // cost is part of none of the phases; pause timing).
    state.PauseTiming();
    std::vector<oid_t> ids = f.ids;
    state.ResumeTiming();
    project::PhaseBreakdown phases;
    project::ProjectSide(ids, strategy, columns, out, n,
                         radix::bench::BenchHw(),
                         project::DsmPostOptions::kAuto, 0, &phases);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * pi);
  state.counters["N"] = static_cast<double>(n);
  state.counters["pi"] = static_cast<double>(pi);
}

void BM_Unsorted(benchmark::State& s) { RunStrategy(s, SideStrategy::kUnsorted); }
void BM_Sorted(benchmark::State& s) { RunStrategy(s, SideStrategy::kSorted); }
void BM_PartialClustered(benchmark::State& s) {
  RunStrategy(s, SideStrategy::kClustered);
}
void BM_Declustered(benchmark::State& s) {
  RunStrategy(s, SideStrategy::kDecluster);
}

void Args(benchmark::internal::Benchmark* b) {
  for (int64_t n : {500'000, 8'000'000}) {
    for (int64_t pi : {1, 4, 16, 64}) {
      b->Args({n, pi});
    }
  }
  b->Unit(benchmark::kMillisecond)->Iterations(1);
}

}  // namespace

BENCHMARK(BM_Unsorted)->Apply(Args);
BENCHMARK(BM_Sorted)->Apply(Args);
BENCHMARK(BM_PartialClustered)->Apply(Args);
BENCHMARK(BM_Declustered)->Apply(Args);

BENCHMARK_MAIN();
