// Multi-client serving benchmark for engine::Engine: N client threads
// drive a point-heavy mix of join queries through ONE shared session
// engine (morsel scheduler + admission control + plan cache) and every
// result is checksum-verified. Reports throughput and latency percentiles
// against a serialized back-to-back baseline of the exact same query
// sequence — the speedup_vs_serial figure is the concurrency win of
// overlapping queries on the session's resources.
//
// Standalone driver (not a google-benchmark harness: the unit of
// measurement is a whole serving phase, not an iteration). Honours
// RADIX_BENCH_QUICK / RADIX_BENCH_HW like the figure harnesses.
//
//   bench_serve [--clients=N] [--threads=N] [--rate=QPS] [--quick]
//               [--json=PATH]
//
// Default is closed-loop (every client fires its next query as soon as the
// previous one returns; latency = service time). --rate=QPS switches to
// open-loop: arrivals are scheduled on a fixed grid at the offered rate,
// clients sleep until each query's arrival time, and latency is measured
// from the *scheduled arrival* — so queue build-up under overload shows up
// in the tail percentiles instead of being hidden by client back-pressure.
//
// JSON output follows the google-benchmark report shape ({context,
// benchmarks[]}) so scripts/merge_bench_json.py folds it into BENCH_ci.json
// next to the figure harness numbers.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "hardware/memory_hierarchy.h"
#include "ops/executor.h"
#include "ops/plan.h"
#include "ops/table.h"
#include "project/executor.h"
#include "workload/chain.h"
#include "workload/generator.h"

namespace {

using radix::engine::ChunkingPolicy;
using radix::engine::Engine;
using radix::engine::EngineConfig;
using radix::engine::EngineStats;
using radix::engine::PreparedQuery;
using radix::engine::QuerySpec;
using radix::hardware::MemoryHierarchy;
using radix::project::JoinStrategy;
using radix::workload::JoinWorkload;
using radix::workload::JoinWorkloadSpec;

bool QuickMode(int argc, char** argv) {
  const char* env = std::getenv("RADIX_BENCH_QUICK");
  if (env != nullptr && env[0] == '1') return true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return false;
}

MemoryHierarchy BenchHw() {
  const char* env = std::getenv("RADIX_BENCH_HW");
  if (env != nullptr && std::string(env) == "p4") {
    return MemoryHierarchy::Pentium4();
  }
  return MemoryHierarchy::Detect();
}

size_t FlagValue(int argc, char** argv, const char* name, size_t def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return static_cast<size_t>(std::atoll(argv[i] + prefix.size()));
    }
  }
  return def;
}

std::string StringFlag(int argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return "";
}

JoinWorkload MakeW(size_t n, uint64_t seed, size_t varchar_cols) {
  JoinWorkloadSpec spec;
  spec.cardinality = n;
  spec.num_attrs = 4;
  spec.hit_rate = 1.0;
  spec.seed = seed;
  spec.varchar.num_cols = varchar_cols;
  return radix::workload::MakeJoinWorkload(spec);
}

/// One shape of the serving mix, with its serial ground truth filled in by
/// the baseline phase. Two-sided entries set (workload, spec); plan-tree
/// entries set (catalog, plan) instead and run through the operator layer.
struct MixEntry {
  const char* name;
  const JoinWorkload* workload;
  QuerySpec spec;
  const radix::ops::Catalog* catalog = nullptr;
  const radix::ops::LogicalPlan* plan = nullptr;
  uint64_t checksum = 0;
  size_t cardinality = 0;
};

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double Percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0;
  const size_t idx = std::min(
      sorted_ms.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_ms.size() - 1)));
  return sorted_ms[idx];
}

struct PhaseResult {
  double seconds = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  size_t mismatches = 0;
  size_t errors = 0;
};

PhaseResult Summarize(double seconds, std::vector<double>& latencies_ms,
                      size_t mismatches, size_t errors) {
  PhaseResult r;
  r.seconds = seconds;
  r.qps = seconds > 0 ? static_cast<double>(latencies_ms.size()) / seconds : 0;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  r.p50_ms = Percentile(latencies_ms, 0.50);
  r.p99_ms = Percentile(latencies_ms, 0.99);
  r.p999_ms = Percentile(latencies_ms, 0.999);
  r.mismatches = mismatches;
  r.errors = errors;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  const size_t clients = FlagValue(argc, argv, "clients", 8);
  const size_t threads = FlagValue(argc, argv, "threads", 2);
  const size_t rate_qps = FlagValue(argc, argv, "rate", 0);  // 0 = closed loop
  const size_t per_client =
      FlagValue(argc, argv, "queries", quick ? 30 : 150);
  const std::string json_path = StringFlag(argc, argv, "json");

  // The serving mix: mostly point queries, a band of medium scans, a few
  // heavy varchar projections — the workload the morsel scheduler's
  // priorities are for.
  const size_t point_n = quick ? (size_t{1} << 12) : (size_t{1} << 14);
  const size_t medium_n = quick ? (size_t{1} << 14) : (size_t{1} << 16);
  const size_t heavy_n = quick ? (size_t{1} << 12) : (size_t{1} << 14);
  const JoinWorkload point_w = MakeW(point_n, /*seed=*/7, /*varchar_cols=*/0);
  const JoinWorkload medium_w = MakeW(medium_n, /*seed=*/19, 0);
  const JoinWorkload heavy_w = MakeW(heavy_n, /*seed=*/31, /*varchar_cols=*/1);

  std::vector<MixEntry> mix;
  {
    MixEntry e{"point", &point_w, QuerySpec{}};
    mix.push_back(e);
  }
  {
    MixEntry e{"medium", &medium_w, QuerySpec{}};
    e.spec.pi_left = 2;
    e.spec.pi_right = 2;
    mix.push_back(e);
  }
  {
    MixEntry e{"heavy_varchar", &heavy_w, QuerySpec{}};
    e.spec.pi_right = 1;
    e.spec.pi_varchar_right = 1;
    mix.push_back(e);
  }
  // A multi-operator plan tree in the same mix: select -> 2-edge join
  // chain -> grouped aggregate through the ops/ layer, sharing the
  // session's pool, admission gate and plan cache with the two-sided
  // queries around it.
  radix::workload::ChainWorkloadSpec chain_spec;
  chain_spec.cardinalities = {medium_n, medium_n / 2, medium_n};
  chain_spec.num_attrs = 4;
  chain_spec.seed = 47;
  const radix::workload::ChainWorkload chain_w =
      radix::workload::MakeChainWorkload(chain_spec);
  const radix::ops::Catalog chain_catalog =
      radix::ops::CatalogFromChainWorkload(chain_w);
  radix::ops::LogicalPlan chain_plan;
  {
    radix::ops::Predicate pred;
    pred.col = {0, 1, false};
    pred.op = radix::ops::CmpOp::kLt;
    // PayloadValue is uniform over [0, 2^31); midpoint keeps ~half the rows.
    pred.value = radix::value_t{1} << 30;
    chain_plan.root = radix::ops::Aggregate(
        radix::ops::Join(
            radix::ops::Join(
                radix::ops::Select(radix::ops::Scan(0), pred),
                radix::ops::Scan(1), 0, 1),
            radix::ops::Scan(2), 1, 2),
        {{2, 1, false}},
        {{radix::ops::AggFn::kSum, {0, 1, false}},
         {radix::ops::AggFn::kCount, {}}});
    MixEntry e{"plan_tree_chain", nullptr, QuerySpec{}};
    e.catalog = &chain_catalog;
    e.plan = &chain_plan;
    mix.push_back(e);
  }
  // ~65% point / 20% medium / 5% heavy+varchar / 10% plan-tree chain.
  const int weights[20] = {0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                           0, 0, 0, 1, 1, 1, 1, 2, 3, 3};

  // The full query sequence, fixed up front so the serialized baseline and
  // the concurrent phase execute the SAME work.
  const size_t total = clients * per_client;
  std::vector<size_t> schedule(total);
  std::mt19937_64 rng(0xBE7C);
  for (size_t i = 0; i < total; ++i) schedule[i] = weights[rng() % 20];

  EngineConfig cfg;
  cfg.hierarchy = BenchHw();
  cfg.num_threads = threads;
  cfg.point_query_rows_threshold = point_n;  // point shape = high priority
  Engine eng(cfg);

  std::fprintf(stderr,
               "bench_serve: clients=%zu threads=%zu queries=%zu "
               "(point=%zu medium=%zu heavy=%zu rows)%s\n",
               clients, threads, total, point_n, medium_n, heavy_n,
               quick ? " [quick]" : "");

  // Run one mix entry through whichever engine entry point it names,
  // normalizing (checksum, cardinality) across the two result types.
  auto run_query = [&eng](const MixEntry& e, uint64_t* checksum,
                          size_t* cardinality) -> radix::Status {
    if (e.plan != nullptr) {
      radix::ops::PlanRun run;
      radix::Status status = eng.Execute(*e.catalog, *e.plan, &run);
      if (!status.ok()) return status;
      *checksum = run.checksum;
      *cardinality = run.result_rows;
      return status;
    }
    radix::project::QueryRun run;
    radix::Status status = eng.Prepare(*e.workload, e.spec).Execute(&run);
    if (!status.ok()) return status;
    *checksum = run.checksum;
    *cardinality = run.result_cardinality;
    return status;
  };

  // -------------------------------------------------------------------------
  // Phase 1: serialized back-to-back baseline — one thread runs the whole
  // sequence, recording ground-truth checksums and the serial throughput.
  // -------------------------------------------------------------------------
  for (MixEntry& e : mix) {
    radix::Status status = run_query(e, &e.checksum, &e.cardinality);
    if (!status.ok()) {
      std::fprintf(stderr, "bench_serve: ground truth for %s failed: %s\n",
                   e.name, status.ToString().c_str());
      return 1;
    }
  }
  std::vector<double> serial_lat_ms;
  serial_lat_ms.reserve(total);
  size_t serial_bad = 0;
  const uint64_t serial_start = NowNanos();
  for (size_t i = 0; i < total; ++i) {
    const MixEntry& e = mix[schedule[i]];
    const uint64_t q_start = NowNanos();
    uint64_t checksum = 0;
    size_t cardinality = 0;
    radix::Status status = run_query(e, &checksum, &cardinality);
    serial_lat_ms.push_back(
        static_cast<double>(NowNanos() - q_start) / 1e6);
    if (!status.ok() || checksum != e.checksum ||
        cardinality != e.cardinality)
      ++serial_bad;
  }
  const double serial_seconds =
      static_cast<double>(NowNanos() - serial_start) / 1e9;
  PhaseResult serial = Summarize(serial_seconds, serial_lat_ms, serial_bad, 0);

  // -------------------------------------------------------------------------
  // Phase 2: concurrent serving — `clients` threads drain the same
  // sequence off a shared arrival index. Closed-loop by default; with
  // --rate, arrivals sit on a fixed open-loop grid and latency counts from
  // the scheduled arrival (queueing delay included).
  // -------------------------------------------------------------------------
  std::atomic<size_t> next{0};
  std::atomic<size_t> conc_bad{0};
  std::atomic<size_t> conc_err{0};
  std::vector<double> conc_lat_ms(total, 0);
  const uint64_t arrival_step_nanos =
      rate_qps > 0 ? static_cast<uint64_t>(1e9 / static_cast<double>(rate_qps))
                   : 0;

  std::vector<std::thread> workers;
  const uint64_t conc_start = NowNanos();
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total) return;
        uint64_t arrival = NowNanos();
        if (arrival_step_nanos > 0) {
          const uint64_t scheduled = conc_start + i * arrival_step_nanos;
          while (NowNanos() < scheduled) {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
          }
          arrival = scheduled;  // open loop: latency from scheduled arrival
        }
        const MixEntry& e = mix[schedule[i]];
        uint64_t checksum = 0;
        size_t cardinality = 0;
        radix::Status status = run_query(e, &checksum, &cardinality);
        if (!status.ok()) {
          conc_err.fetch_add(1);
          continue;
        }
        conc_lat_ms[i] = static_cast<double>(NowNanos() - arrival) / 1e6;
        if (checksum != e.checksum || cardinality != e.cardinality) {
          conc_bad.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  const double conc_seconds =
      static_cast<double>(NowNanos() - conc_start) / 1e9;
  PhaseResult conc =
      Summarize(conc_seconds, conc_lat_ms, conc_bad.load(), conc_err.load());

  const double speedup = conc.qps > 0 && serial.qps > 0
                             ? conc.qps / serial.qps
                             : 0;
  EngineStats stats = eng.Stats();

  std::printf("phase            qps      p50_ms     p99_ms    p999_ms\n");
  std::printf("serial    %10.1f  %9.3f  %9.3f  %9.3f\n", serial.qps,
              serial.p50_ms, serial.p99_ms, serial.p999_ms);
  std::printf("concurrent%10.1f  %9.3f  %9.3f  %9.3f\n", conc.qps,
              conc.p50_ms, conc.p99_ms, conc.p999_ms);
  std::printf("speedup_vs_serial: %.2fx  (checksums: %zu serial / %zu "
              "concurrent mismatches, %zu errors)\n",
              speedup, serial.mismatches, conc.mismatches, conc.errors);
  std::printf("plan cache: %llu hits / %llu misses; admission: %llu queued\n",
              static_cast<unsigned long long>(stats.plan_cache_hits),
              static_cast<unsigned long long>(stats.plan_cache_misses),
              static_cast<unsigned long long>(stats.admission.queued));

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_serve: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
    // Google-benchmark report shape, one entry per phase plus the speedup,
    // so merge_bench_json.py treats this like any figure harness.
    std::fprintf(f,
                 "{\n"
                 "  \"context\": {\n"
                 "    \"executable\": \"bench_serve\",\n"
                 "    \"clients\": %zu,\n"
                 "    \"threads\": %zu,\n"
                 "    \"queries\": %zu,\n"
                 "    \"quick\": %s\n"
                 "  },\n"
                 "  \"benchmarks\": [\n",
                 clients, threads, total, quick ? "true" : "false");
    auto emit = [&](const char* name, const PhaseResult& r, bool comma) {
      std::fprintf(f,
                   "    {\"name\": \"BM_Serve/%s\", \"run_type\": "
                   "\"aggregate\", \"qps\": %.3f, \"p50_ms\": %.4f, "
                   "\"p99_ms\": %.4f, \"p999_ms\": %.4f, "
                   "\"real_time\": %.0f, \"time_unit\": \"ns\"}%s\n",
                   name, r.qps, r.p50_ms, r.p99_ms, r.p999_ms,
                   r.seconds * 1e9, comma ? "," : "");
    };
    emit("serial", serial, true);
    emit("concurrent", conc, true);
    std::fprintf(f,
                 "    {\"name\": \"BM_Serve/speedup_vs_serial\", "
                 "\"run_type\": \"aggregate\", \"speedup\": %.4f, "
                 "\"real_time\": %.0f, \"time_unit\": \"ns\"}\n"
                 "  ]\n}\n",
                 speedup, conc.seconds * 1e9);
    std::fclose(f);
    std::fprintf(stderr, "bench_serve: wrote %s\n", json_path.c_str());
  }

  // Correctness is the contract: any mismatch or unexpected error fails
  // the run (CI treats this binary as a smoke test too).
  if (serial.mismatches != 0 || conc.mismatches != 0 || conc.errors != 0) {
    std::fprintf(stderr, "bench_serve: FAILED verification\n");
    return 1;
  }
  return 0;
}
