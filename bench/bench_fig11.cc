// Figure 11: impact of selectivity on the sparse Clustered Positional Join
// (N = 1M index entries, selectivities 100% / 10% / 1%), swept over the
// number of radix-bits. The join input is a selection of a base table of
// cardinality N/s, so the fetched oids are spread sparsely: DSM cache
// lines hold values of consecutive base tuples of which only a fraction is
// used, so sequential bandwidth utilization (and thus performance) drops
// as s falls — but clustering still helps, and the curve keeps its shape.

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.h"
#include "cluster/partition_plan.h"
#include "cluster/radix_cluster.h"
#include "common/rng.h"
#include "join/positional_join.h"
#include "workload/generator.h"

namespace {

using namespace radix;  // NOLINT

// range(0): selectivity code 0 -> 100%, 1 -> 10%, 2 -> 1%.
double Selectivity(int64_t code) {
  switch (code) {
    case 0:
      return 1.0;
    case 1:
      return 0.1;
    default:
      return 0.01;
  }
}

void BM_SparseClusteredPositionalJoin(benchmark::State& state) {
  size_t n = radix::bench::ScaledN(1'000'000);
  double s = Selectivity(state.range(0));
  radix_bits_t bits = static_cast<radix_bits_t>(state.range(1));
  size_t base_n = static_cast<size_t>(n / s);
  radix_bits_t sig = SignificantBits(base_n);
  if (bits > sig) {
    state.SkipWithError("bits exceed base-table significant bits");
    return;
  }
  Rng rng(5);
  std::vector<oid_t> ids = workload::MakeSparseOids(n, s, rng);
  cluster::ClusterSpec spec{
      .total_bits = bits,
      .ignore_bits = static_cast<radix_bits_t>(sig - bits),
      .passes = cluster::PassesFor(bits, radix::bench::BenchHw())};
  cluster::RadixCluster(std::span<oid_t>(ids),
                        [](oid_t v) { return uint64_t{v}; }, spec);
  auto base = workload::MakeBaseColumn(base_n, 1);
  std::vector<value_t> out(n);
  for (auto _ : state) {
    join::PositionalJoin<value_t>(ids, base.span(), std::span<value_t>(out));
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["selectivity_pct"] = s * 100;
  state.counters["B"] = bits;
  state.counters["base_tuples"] = static_cast<double>(base_n);
}

void Args(benchmark::internal::Benchmark* b) {
  for (int64_t sel = 0; sel <= 2; ++sel) {
    for (int64_t bits = 0; bits <= 24; bits += 4) {
      b->Args({sel, bits});
    }
  }
  b->Unit(benchmark::kMillisecond)->Iterations(1);
}

}  // namespace

BENCHMARK(BM_SparseClusteredPositionalJoin)->Apply(Args);

BENCHMARK_MAIN();
