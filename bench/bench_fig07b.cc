// Figure 7b: the interplay of the three components of the Radix-Decluster
// DSM post-projection strategy — Radix-Cluster, Positional-Join, and
// Radix-Decluster — plus their total, as a function of the number of
// radix-bits B (N = 8M, pi = 1, best insertion window).
//
// Expected shape (paper §4.1): positional-join cost falls until B reaches
// the partial-cluster formula's value (B = 8 for 8M tuples on a 512KB
// cache), radix-decluster cost only grows with B, radix-cluster cost grows
// mildly (extra pass once B exceeds the per-pass fan-out limit), so the
// total has its optimum near the formula's B.

#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "bench_common.h"
#include "cluster/partition_plan.h"
#include "cluster/radix_cluster.h"
#include "common/rng.h"
#include "common/timer.h"
#include "costmodel/models.h"
#include "decluster/window.h"
#include "decluster/radix_decluster.h"
#include "join/positional_join.h"
#include "workload/distributions.h"
#include "workload/generator.h"

namespace {

using namespace radix;  // NOLINT

void BM_DeclusterComponents(benchmark::State& state) {
  size_t n = radix::bench::ScaledN(8'000'000, 2'000'000);
  radix_bits_t bits = static_cast<radix_bits_t>(state.range(0));
  radix_bits_t sig = SignificantBits(n);
  if (bits > sig) {
    state.SkipWithError("bits exceed significant bits of N");
    return;
  }
  const auto& hw = radix::bench::BenchHw();

  // Unclustered (oid, result-position) pairs, as they come out of the join.
  static size_t cached_n = 0;
  static std::vector<oid_t> base_ids;
  if (cached_n != n) {
    cached_n = n;
    base_ids.resize(n);
    std::iota(base_ids.begin(), base_ids.end(), 0u);
    Rng rng(7);
    workload::Shuffle(base_ids.data(), n, rng);
  }
  static storage::Column<value_t> column = workload::MakeBaseColumn(n, 1);
  if (column.size() != n) column = workload::MakeBaseColumn(n, 1);

  double cluster_ms = 0, posjoin_ms = 0, decluster_ms = 0;
  for (auto _ : state) {
    struct IdPos {
      oid_t id;
      oid_t pos;
    };
    std::vector<IdPos> pairs(n);
    for (size_t i = 0; i < n; ++i) {
      pairs[i] = {base_ids[i], static_cast<oid_t>(i)};
    }
    cluster::ClusterSpec spec{
        .total_bits = bits,
        .ignore_bits = static_cast<radix_bits_t>(sig - bits),
        .passes = cluster::PassesFor(bits, hw)};
    Timer t;
    std::vector<IdPos> scratch(n);
    simcache::NoTracer tracer;
    auto radix_of = [](const IdPos& p) -> uint64_t { return p.id; };
    cluster::ClusterBorders borders = cluster::RadixClusterMultiPass(
        pairs.data(), scratch.data(), n, radix_of, spec, tracer);
    cluster_ms += t.ElapsedMillis();

    t.Reset();
    std::vector<oid_t> ids(n), result_pos(n);
    for (size_t i = 0; i < n; ++i) {
      ids[i] = pairs[i].id;
      result_pos[i] = pairs[i].pos;
    }
    std::vector<value_t> clust_values(n);
    join::PositionalJoin<value_t>(ids, column.span(),
                                  std::span<value_t>(clust_values));
    posjoin_ms += t.ElapsedMillis();

    t.Reset();
    size_t window = decluster::WindowPolicy::ChooseWindowElems(
        hw, sizeof(value_t), borders.num_clusters(), n);
    std::vector<value_t> result(n);
    decluster::RadixDecluster<value_t>(clust_values, result_pos,
                                       decluster::MakeCursors(borders), window,
                                       std::span<value_t>(result));
    decluster_ms += t.ElapsedMillis();
    benchmark::DoNotOptimize(result.data());
  }
  double iters = static_cast<double>(state.iterations());
  state.counters["radix_cluster_ms"] = cluster_ms / iters;
  state.counters["positional_join_ms"] = posjoin_ms / iters;
  state.counters["radix_decluster_ms"] = decluster_ms / iters;
  state.counters["B"] = bits;

  const auto& cpu = costmodel::CpuCosts::Default();
  size_t window = decluster::WindowPolicy::ChooseWindowElems(
      hw, sizeof(value_t), size_t{1} << bits, n);
  double modeled =
      costmodel::RadixClusterCost(hw, cpu, n, 8, bits,
                                  cluster::PassesFor(bits, hw))
          .seconds +
      costmodel::ClusteredPositionalJoinCost(hw, cpu, n, n, 4, bits, false)
          .seconds +
      costmodel::RadixDeclusterCost(hw, cpu, n, 4, bits, window).seconds;
  state.counters["modeled_total_ms"] = modeled * 1e3;
}

}  // namespace

BENCHMARK(BM_DeclusterComponents)
    ->DenseRange(0, 24, 2)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
