// Figure 10b: overall join performance versus join hit rate h in
// {1:3, 1:1, 3:1} (N = 500K, omega = 64, pi = 4). Expected shape (paper
// §4.2): all strategies get cheaper as the result shrinks, DSM
// post-projection benefits the most because the (relatively expensive)
// projection phase scales with the result cardinality.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "engine/engine.h"
#include "workload/generator.h"

namespace {

using namespace radix;  // NOLINT
using project::JoinStrategy;

constexpr size_t kOmega = 65;  // key + 64 payload columns
constexpr size_t kPi = 4;

// range(0) encodes the hit rate: 0 -> 1:3 (0.333), 1 -> 1:1, 2 -> 3:1 (3.0)
double HitRate(int64_t code) {
  switch (code) {
    case 0:
      return 1.0 / 3.0;
    case 1:
      return 1.0;
    default:
      return 3.0;
  }
}

const workload::JoinWorkload& Workload(int64_t code) {
  static workload::JoinWorkload w[3] = {};
  static bool built[3] = {false, false, false};
  if (!built[code]) {
    workload::JoinWorkloadSpec spec;
    spec.cardinality = radix::bench::ScaledN(500'000);
    spec.num_attrs = kOmega;
    spec.hit_rate = HitRate(code);
    w[code] = workload::MakeJoinWorkload(spec);
    built[code] = true;
  }
  return w[code];
}

void RunStrategy(benchmark::State& state, JoinStrategy strategy) {
  int64_t code = state.range(0);
  const auto& w = Workload(code);
  engine::QuerySpec spec;
  spec.strategy = strategy;
  spec.pi_left = kPi;
  spec.pi_right = kPi;
  size_t result_size = 0;
  for (auto _ : state) {
    project::QueryRun run = radix::bench::BenchEngine().Execute(w, spec);
    result_size = run.result_cardinality;
    benchmark::DoNotOptimize(result_size);
  }
  state.counters["hit_rate_x100"] = HitRate(code) * 100;
  state.counters["result_tuples"] = static_cast<double>(result_size);
}

void BM_NsmPreHash(benchmark::State& s) {
  RunStrategy(s, JoinStrategy::kNsmPreHash);
}
void BM_NsmPrePhash(benchmark::State& s) {
  RunStrategy(s, JoinStrategy::kNsmPrePhash);
}
void BM_DsmPrePhash(benchmark::State& s) {
  RunStrategy(s, JoinStrategy::kDsmPrePhash);
}
void BM_DsmPostDecluster(benchmark::State& s) {
  RunStrategy(s, JoinStrategy::kDsmPostDecluster);
}
void BM_NsmPostDecluster(benchmark::State& s) {
  RunStrategy(s, JoinStrategy::kNsmPostDecluster);
}
void BM_NsmPostJive(benchmark::State& s) {
  RunStrategy(s, JoinStrategy::kNsmPostJive);
}

// Varchar variant across hit rates: the result cardinality scales the
// string bytes the projection must move, so the 3:1 point triples the
// paged-decluster heap traffic relative to 1:1.
const workload::JoinWorkload& VarcharWorkload(int64_t code) {
  static workload::JoinWorkload w[3] = {};
  static bool built[3] = {false, false, false};
  if (!built[code]) {
    workload::JoinWorkloadSpec spec;
    spec.cardinality = radix::bench::ScaledN(500'000);
    spec.num_attrs = kOmega;
    spec.hit_rate = HitRate(code);
    spec.varchar.num_cols = 2;
    w[code] = workload::MakeJoinWorkload(spec);
    built[code] = true;
  }
  return w[code];
}

void BM_DsmPostDeclusterVarchar(benchmark::State& state) {
  int64_t code = state.range(0);
  const auto& w = VarcharWorkload(code);
  engine::QuerySpec spec;
  spec.strategy = JoinStrategy::kDsmPostDecluster;
  spec.pi_left = kPi;
  spec.pi_right = kPi;
  spec.pi_varchar_left = 2;
  spec.pi_varchar_right = 2;
  size_t result_size = 0;
  for (auto _ : state) {
    project::QueryRun run = radix::bench::BenchEngine().Execute(w, spec);
    result_size = run.result_cardinality;
    benchmark::DoNotOptimize(result_size);
  }
  state.counters["hit_rate_x100"] = HitRate(code) * 100;
  state.counters["varchar_cols"] = 4;
  state.counters["result_tuples"] = static_cast<double>(result_size);
}

void Args(benchmark::internal::Benchmark* b) {
  b->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond)->Iterations(1);
}

}  // namespace

BENCHMARK(BM_NsmPreHash)->Apply(Args);
BENCHMARK(BM_NsmPrePhash)->Apply(Args);
BENCHMARK(BM_DsmPrePhash)->Apply(Args);
BENCHMARK(BM_DsmPostDecluster)->Apply(Args);
BENCHMARK(BM_NsmPostDecluster)->Apply(Args);
BENCHMARK(BM_NsmPostJive)->Apply(Args);
BENCHMARK(BM_DsmPostDeclusterVarchar)->Apply(Args);

BENCHMARK_MAIN();
