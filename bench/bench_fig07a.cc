// Figure 7a: Radix-Decluster in isolation — elapsed time and L1/L2/TLB
// event counts versus insertion-window size ||W|| (N = 8M, pi = 1, input
// clustered on 8 radix bits). The paper's cliffs: performance improves as
// the window grows (better sequential bandwidth per cluster) until ||W||
// exceeds the cache, where L2 misses spike; TLB pressure appears earlier.
//
// Event counts come from the software cache simulator (our substitute for
// hardware performance counters), run at a reduced cardinality so the
// simulation stays fast; miss counts are reported per-tuple-scaled.

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.h"
#include "costmodel/models.h"
#include "decluster/radix_decluster.h"
#include "simcache/mem_tracer.h"

namespace {

using namespace radix;  // NOLINT
using radix::bench::DeclusterInput;
using radix::bench::MakeDeclusterInput;

constexpr radix_bits_t kBits = 8;

void BM_DeclusterVsWindow(benchmark::State& state) {
  size_t n = radix::bench::ScaledN(8'000'000, 2'000'000);
  static DeclusterInput in = MakeDeclusterInput(n, kBits, 42);
  size_t window_bytes = static_cast<size_t>(state.range(0));
  size_t window_elems = std::max<size_t>(1, window_bytes / sizeof(value_t));
  std::vector<value_t> result(n);
  for (auto _ : state) {
    decluster::RadixDecluster<value_t>(in.values, in.ids,
                                       decluster::MakeCursors(in.borders),
                                       window_elems,
                                       std::span<value_t>(result));
    benchmark::DoNotOptimize(result.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["window_KB"] =
      static_cast<double>(window_bytes) / 1024.0;

  // Simulated hardware events at reduced N, scaled per million tuples so
  // curves across window sizes are comparable.
  size_t sim_n = std::min<size_t>(n, 1u << 20);
  static DeclusterInput sim_in = MakeDeclusterInput(sim_n, kBits, 43);
  simcache::MemTracer tracer(hardware::MemoryHierarchy::Pentium4());
  std::vector<value_t> sim_result(sim_n);
  size_t sim_window = std::max<size_t>(1, window_bytes / sizeof(value_t));
  decluster::RadixDecluster<value_t>(sim_in.values, sim_in.ids,
                                     decluster::MakeCursors(sim_in.borders),
                                     sim_window,
                                     std::span<value_t>(sim_result), &tracer);
  simcache::MemCounters c = tracer.counters();
  double per_m = 1e6 / static_cast<double>(sim_n);
  state.counters["L1_misses_perM"] = static_cast<double>(c.l1_misses) * per_m;
  state.counters["L2_misses_perM"] = static_cast<double>(c.l2_misses) * per_m;
  state.counters["TLB_misses_perM"] =
      static_cast<double>(c.tlb_misses) * per_m;

  // Modeled elapsed time from the Appendix-A cost model.
  costmodel::CostEstimate est = costmodel::RadixDeclusterCost(
      radix::bench::BenchHw(), costmodel::CpuCosts::Default(), n,
      sizeof(value_t), kBits, window_elems);
  state.counters["modeled_ms"] = est.seconds * 1e3;
}

}  // namespace

// Window sweep 1KB .. 32MB, the x-axis of Fig. 7a.
BENCHMARK(BM_DeclusterVsWindow)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 32 << 20)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
