// Figure 12 (paper §5): Radix-Decluster into buffer-manager pages for
// variable-size values — the three-phase scheme (decluster the lengths
// into SIZE_VALUES, prefix-sum into byte positions, decluster the value
// bytes into page/offset) versus the fixed-size fast path whose page and
// offset follow directly from the result oid, versus the flat (in-memory
// varchar column) variant the DSM post-projection executor runs. Each
// benchmark reports a "modeled_ms" counter from the cost model's
// paged-decluster term (VarcharRadixDeclusterCost), the same term the
// engine's Explain() surfaces for varchar projections.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.h"
#include "bufferpool/buffer_manager.h"
#include "costmodel/models.h"
#include "decluster/paged_decluster.h"
#include "decluster/window.h"
#include "storage/varchar.h"
#include "workload/generator.h"

namespace {

using namespace radix;  // NOLINT

const costmodel::CpuCosts& Cpu() {
  static costmodel::CpuCosts cpu = costmodel::CpuCosts::Default();
  return cpu;
}

size_t CapN(size_t n) { return radix::bench::ScaledN(n, 1'000'000); }

/// The clustered inputs of a decluster-side varchar projection: reuse the
/// paper-distribution fixed fixture and derive per-tuple strings from the
/// result positions (deterministic, so lengths vary but are reproducible).
struct VarInput {
  radix::bench::DeclusterInput base;
  decluster::VarValues values;
  storage::VarcharColumn column;  // same bytes, flat-variant input
  size_t window = 0;
  size_t avg_len = 0;
};

VarInput MakeVarInput(size_t n, radix_bits_t bits,
                      const hardware::MemoryHierarchy& hw) {
  VarInput in;
  in.base = radix::bench::MakeDeclusterInput(n, bits, 12);
  workload::VarcharColumnSpec vs;
  vs.min_len = 4;
  vs.max_len = 24;
  size_t heap = 0;
  for (size_t i = 0; i < n; ++i) {
    std::string s = workload::PayloadString(
        static_cast<value_t>(in.base.ids[i]), 0, vs);
    in.values.Append(s);
    in.column.Append(s);
    heap += s.size();
  }
  in.avg_len = n == 0 ? 1 : std::max<size_t>(1, heap / n);
  in.window = decluster::WindowPolicy::ChooseWindowElems(
      hw, std::max(sizeof(uint32_t), in.avg_len),
      in.base.borders.num_clusters(), n);
  return in;
}

// ------------------------------------------------- three-phase paged (var)
void BM_PagedDeclusterVar(benchmark::State& state) {
  size_t n = CapN(static_cast<size_t>(state.range(0)));
  radix_bits_t bits = static_cast<radix_bits_t>(state.range(1));
  const auto& hw = radix::bench::BenchHw();
  VarInput in = MakeVarInput(n, bits, hw);
  size_t pages = 0;
  for (auto _ : state) {
    state.PauseTiming();
    bufferpool::BufferManager bm(8192);
    state.ResumeTiming();
    decluster::PagedResult result = decluster::PagedDeclusterVar(
        in.values, in.base.ids, in.base.borders, in.window, &bm);
    pages = result.num_pages;
    benchmark::DoNotOptimize(result.directory.data());
  }
  state.counters["B"] = bits;
  state.counters["N"] = static_cast<double>(n);
  state.counters["pages"] = static_cast<double>(pages);
  state.counters["avg_len"] = static_cast<double>(in.avg_len);
  state.counters["modeled_ms"] =
      costmodel::VarcharRadixDeclusterCost(hw, Cpu(), n, in.avg_len, bits,
                                           in.window)
          .seconds *
      1e3;
}

// ------------------------------------------------ fixed-size single pass
void BM_PagedDeclusterFixed(benchmark::State& state) {
  size_t n = CapN(static_cast<size_t>(state.range(0)));
  radix_bits_t bits = static_cast<radix_bits_t>(state.range(1));
  const auto& hw = radix::bench::BenchHw();
  radix::bench::DeclusterInput in = radix::bench::MakeDeclusterInput(n, bits,
                                                                     12);
  size_t window = decluster::WindowPolicy::ChooseWindowElems(
      hw, sizeof(value_t), in.borders.num_clusters(), n);
  for (auto _ : state) {
    state.PauseTiming();
    bufferpool::BufferManager bm(8192);
    state.ResumeTiming();
    decluster::PagedResult result = decluster::PagedDeclusterFixed(
        in.values, in.ids, in.borders, window, &bm);
    benchmark::DoNotOptimize(result.directory.data());
  }
  state.counters["B"] = bits;
  state.counters["N"] = static_cast<double>(n);
  state.counters["modeled_ms"] =
      costmodel::RadixDeclusterCost(hw, Cpu(), n, sizeof(value_t), bits,
                                    window)
          .seconds *
      1e3;
}

// ----------------------------------------- flat three-phase (executor's)
void BM_RadixDeclusterVarcharFlat(benchmark::State& state) {
  size_t n = CapN(static_cast<size_t>(state.range(0)));
  radix_bits_t bits = static_cast<radix_bits_t>(state.range(1));
  const auto& hw = radix::bench::BenchHw();
  VarInput in = MakeVarInput(n, bits, hw);
  for (auto _ : state) {
    storage::VarcharColumn out = decluster::RadixDeclusterVarchar(
        in.column, in.base.ids, in.base.borders, in.window);
    benchmark::DoNotOptimize(out.heap().data());
  }
  state.counters["B"] = bits;
  state.counters["N"] = static_cast<double>(n);
  state.counters["modeled_ms"] =
      costmodel::VarcharRadixDeclusterCost(hw, Cpu(), n, in.avg_len, bits,
                                           in.window)
          .seconds *
      1e3;
}

void Args(benchmark::internal::Benchmark* b) {
  for (int64_t n : {250'000, 1'000'000, 4'000'000}) {
    for (int64_t bits : {4, 8, 12}) {
      b->Args({n, bits});
    }
  }
  b->Unit(benchmark::kMillisecond)->Iterations(1);
}

}  // namespace

BENCHMARK(BM_PagedDeclusterVar)->Apply(Args);
BENCHMARK(BM_PagedDeclusterFixed)->Apply(Args);
BENCHMARK(BM_RadixDeclusterVarcharFlat)->Apply(Args);

BENCHMARK_MAIN();
