// Figure 10a: overall join performance versus projectivity pi (N = 500K,
// omega = 64, hit rate 1:1), across the six end-to-end strategies:
//   NSM-pre-hash, NSM-pre-phash, DSM-pre-phash, DSM-post-decluster,
//   NSM-post-decluster, NSM-post-jive.
// Expected shape (paper §4.2): DSM post-projection wins across the board;
// naive NSM-pre-hash is worst but narrows at high pi (its cache lines are
// used better); the NSM post-projection variants pay the join-index
// creation plus a second pass over the wide base tables and cannot catch
// up. Error bars in the paper (sparse inputs) are reproduced separately in
// bench_fig11's sparse series.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "engine/engine.h"
#include "workload/generator.h"

namespace {

using namespace radix;  // NOLINT
using project::JoinStrategy;

constexpr size_t kOmega = 65;  // key + 64 payload columns

const workload::JoinWorkload& Workload() {
  static workload::JoinWorkload w = [] {
    workload::JoinWorkloadSpec spec;
    spec.cardinality = radix::bench::ScaledN(500'000);
    spec.num_attrs = kOmega;
    spec.hit_rate = 1.0;
    return workload::MakeJoinWorkload(spec);
  }();
  return w;
}

void RunStrategy(benchmark::State& state, JoinStrategy strategy) {
  size_t pi = static_cast<size_t>(state.range(0));
  const auto& w = Workload();
  engine::QuerySpec spec;
  spec.strategy = strategy;
  spec.pi_left = pi;
  spec.pi_right = pi;
  uint64_t checksum = 0;
  project::PhaseBreakdown phases;
  for (auto _ : state) {
    project::QueryRun run = radix::bench::BenchEngine().Execute(w, spec);
    checksum = run.checksum;
    phases = run.phases;
    benchmark::DoNotOptimize(checksum);
  }
  state.counters["pi"] = static_cast<double>(pi);
  state.counters["join_ms"] = phases.join_seconds * 1e3;
  state.counters["projection_ms"] =
      (phases.cluster_seconds + phases.projection_seconds +
       phases.decluster_seconds) *
      1e3;
  // Cross-strategy result agreement is asserted in tests; expose the
  // checksum so bench runs can be eyeballed too.
  state.counters["checksum_lo32"] =
      static_cast<double>(checksum & 0xffffffffu);
}

void BM_NsmPreHash(benchmark::State& s) {
  RunStrategy(s, JoinStrategy::kNsmPreHash);
}
void BM_NsmPrePhash(benchmark::State& s) {
  RunStrategy(s, JoinStrategy::kNsmPrePhash);
}
void BM_DsmPrePhash(benchmark::State& s) {
  RunStrategy(s, JoinStrategy::kDsmPrePhash);
}
void BM_DsmPostDecluster(benchmark::State& s) {
  RunStrategy(s, JoinStrategy::kDsmPostDecluster);
}
void BM_NsmPostDecluster(benchmark::State& s) {
  RunStrategy(s, JoinStrategy::kNsmPostDecluster);
}
void BM_NsmPostJive(benchmark::State& s) {
  RunStrategy(s, JoinStrategy::kNsmPostJive);
}

// Varchar variants (paper §5's workload): the projection list mixes
// range(0) fixed columns per side with 2 varchar columns per side, so the
// sweep shows how string payloads shift the Fig. 10a comparison — DSM-post
// pays the three-phase paged decluster, the pre-projection strategies drag
// oid luggage through the join and gather strings at the end.
const workload::JoinWorkload& VarcharWorkload() {
  static workload::JoinWorkload w = [] {
    workload::JoinWorkloadSpec spec;
    spec.cardinality = radix::bench::ScaledN(500'000);
    spec.num_attrs = kOmega;
    spec.hit_rate = 1.0;
    spec.varchar.num_cols = 2;
    return workload::MakeJoinWorkload(spec);
  }();
  return w;
}

void RunStrategyVarchar(benchmark::State& state, JoinStrategy strategy) {
  size_t pi = static_cast<size_t>(state.range(0));
  const auto& w = VarcharWorkload();
  engine::QuerySpec spec;
  spec.strategy = strategy;
  spec.pi_left = pi;
  spec.pi_right = pi;
  spec.pi_varchar_left = 2;
  spec.pi_varchar_right = 2;
  uint64_t checksum = 0;
  for (auto _ : state) {
    project::QueryRun run = radix::bench::BenchEngine().Execute(w, spec);
    checksum = run.checksum;
    benchmark::DoNotOptimize(checksum);
  }
  state.counters["pi"] = static_cast<double>(pi);
  state.counters["varchar_cols"] = 4;
  state.counters["checksum_lo32"] =
      static_cast<double>(checksum & 0xffffffffu);
}

void BM_DsmPostDeclusterVarchar(benchmark::State& s) {
  RunStrategyVarchar(s, JoinStrategy::kDsmPostDecluster);
}
void BM_NsmPrePhashVarchar(benchmark::State& s) {
  RunStrategyVarchar(s, JoinStrategy::kNsmPrePhash);
}

void Args(benchmark::internal::Benchmark* b) {
  for (int64_t pi : {1, 4, 16, 64}) b->Args({pi});
  b->Unit(benchmark::kMillisecond)->Iterations(1);
}

void VarcharArgs(benchmark::internal::Benchmark* b) {
  for (int64_t pi : {1, 4, 16}) b->Args({pi});
  b->Unit(benchmark::kMillisecond)->Iterations(1);
}

}  // namespace

BENCHMARK(BM_NsmPreHash)->Apply(Args);
BENCHMARK(BM_NsmPrePhash)->Apply(Args);
BENCHMARK(BM_DsmPrePhash)->Apply(Args);
BENCHMARK(BM_DsmPostDecluster)->Apply(Args);
BENCHMARK(BM_NsmPostDecluster)->Apply(Args);
BENCHMARK(BM_NsmPostJive)->Apply(Args);
BENCHMARK(BM_DsmPostDeclusterVarchar)->Apply(VarcharArgs);
BENCHMARK(BM_NsmPrePhashVarchar)->Apply(VarcharArgs);

BENCHMARK_MAIN();
