// Figure 10c: overall join performance versus cardinality N in
// {15K .. 16M} (omega = 64, pi = 4, h = 1:1), with the DSM post-projection
// strategy-code progression the paper annotates on the curve:
//   u/u (both columns fit cache) -> c/u -> c/d -> s/d as N grows.
// Expected shape: linear scaling in N for all strategies, with a steeper
// segment for DSM-post at the point where columns outgrow the cache and
// the Radix-Decluster machinery kicks in.
//
// Only the DSM columns are materialized (the paper notes that for DSM only
// pi matters, not omega), which keeps the 16M point inside laptop memory.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "engine/engine.h"
#include "workload/generator.h"

namespace {

using namespace radix;  // NOLINT
using project::JoinStrategy;
using project::SideStrategy;

constexpr size_t kPi = 4;

workload::JoinWorkload MakeW(size_t n) {
  workload::JoinWorkloadSpec spec;
  spec.cardinality = n;
  spec.num_attrs = kPi + 1;
  spec.hit_rate = 1.0;
  spec.build_nsm = false;  // DSM-only experiment
  return workload::MakeJoinWorkload(spec);
}

/// Planned DSM-post (the paper's annotated curve): the planner picks the
/// side codes by cardinality.
void BM_DsmPostPlanned(benchmark::State& state) {
  size_t n = radix::bench::ScaledN(static_cast<size_t>(state.range(0)),
                                   4'000'000);
  workload::JoinWorkload w = MakeW(n);
  engine::QuerySpec spec;
  spec.pi_left = kPi;
  spec.pi_right = kPi;
  std::string code;
  for (auto _ : state) {
    project::QueryRun run = radix::bench::BenchEngine().Execute(w, spec);
    code = run.detail;
    benchmark::DoNotOptimize(run.checksum);
  }
  state.SetLabel(code);  // the u/u, c/u, c/d, s/d annotation
  state.counters["N"] = static_cast<double>(n);
}

/// Forced side-code variants, to expose the crossovers between codes.
void RunForced(benchmark::State& state, SideStrategy left,
               SideStrategy right) {
  size_t n = radix::bench::ScaledN(static_cast<size_t>(state.range(0)),
                                   4'000'000);
  workload::JoinWorkload w = MakeW(n);
  engine::QuerySpec spec;
  spec.pi_left = kPi;
  spec.pi_right = kPi;
  spec.plan_sides = false;
  spec.left = left;
  spec.right = right;
  for (auto _ : state) {
    project::QueryRun run = radix::bench::BenchEngine().Execute(w, spec);
    benchmark::DoNotOptimize(run.checksum);
  }
  state.counters["N"] = static_cast<double>(n);
}

void BM_DsmPost_uu(benchmark::State& s) {
  RunForced(s, SideStrategy::kUnsorted, SideStrategy::kUnsorted);
}
void BM_DsmPost_cu(benchmark::State& s) {
  RunForced(s, SideStrategy::kClustered, SideStrategy::kUnsorted);
}
void BM_DsmPost_cd(benchmark::State& s) {
  RunForced(s, SideStrategy::kClustered, SideStrategy::kDecluster);
}
void BM_DsmPost_sd(benchmark::State& s) {
  RunForced(s, SideStrategy::kSorted, SideStrategy::kDecluster);
}

/// Planned DSM-post over a mixed fixed+varchar projection list (paper §5):
/// same cardinality sweep, with 2 varchar columns per side riding along —
/// the right side's strings run the Fig. 12 three-phase paged decluster
/// once columns outgrow the cache.
void BM_DsmPostPlannedVarchar(benchmark::State& state) {
  size_t n = radix::bench::ScaledN(static_cast<size_t>(state.range(0)),
                                   4'000'000);
  workload::JoinWorkloadSpec wspec;
  wspec.cardinality = n;
  wspec.num_attrs = kPi + 1;
  wspec.hit_rate = 1.0;
  wspec.build_nsm = false;
  wspec.varchar.num_cols = 2;
  workload::JoinWorkload w = workload::MakeJoinWorkload(wspec);
  engine::QuerySpec spec;
  spec.pi_left = kPi;
  spec.pi_right = kPi;
  spec.pi_varchar_left = 2;
  spec.pi_varchar_right = 2;
  std::string code;
  double modeled_varchar_ms = 0;
  for (auto _ : state) {
    engine::PreparedQuery prepared =
        radix::bench::BenchEngine().Prepare(w, spec);
    modeled_varchar_ms =
        prepared.Explain().varchar_decluster_cost.seconds * 1e3;
    project::QueryRun run = prepared.Execute();
    code = run.detail;
    benchmark::DoNotOptimize(run.checksum);
  }
  state.SetLabel(code);
  state.counters["N"] = static_cast<double>(n);
  state.counters["varchar_cols"] = 4;
  state.counters["modeled_varchar_ms"] = modeled_varchar_ms;
}

void Args(benchmark::internal::Benchmark* b) {
  for (int64_t n : {15'625, 62'500, 250'000, 1'000'000, 4'000'000,
                    16'000'000}) {
    b->Args({n});
  }
  b->Unit(benchmark::kMillisecond)->Iterations(1);
}

}  // namespace

BENCHMARK(BM_DsmPostPlanned)->Apply(Args);
BENCHMARK(BM_DsmPost_uu)->Apply(Args);
BENCHMARK(BM_DsmPost_cu)->Apply(Args);
BENCHMARK(BM_DsmPost_cd)->Apply(Args);
BENCHMARK(BM_DsmPost_sd)->Apply(Args);
BENCHMARK(BM_DsmPostPlannedVarchar)->Apply(Args);

BENCHMARK_MAIN();
