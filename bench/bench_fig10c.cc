// Figure 10c: overall join performance versus cardinality N in
// {15K .. 16M} (omega = 64, pi = 4, h = 1:1), with the DSM post-projection
// strategy-code progression the paper annotates on the curve:
//   u/u (both columns fit cache) -> c/u -> c/d -> s/d as N grows.
// Expected shape: linear scaling in N for all strategies, with a steeper
// segment for DSM-post at the point where columns outgrow the cache and
// the Radix-Decluster machinery kicks in.
//
// Only the DSM columns are materialized (the paper notes that for DSM only
// pi matters, not omega), which keeps the 16M point inside laptop memory.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "engine/engine.h"
#include "workload/generator.h"

namespace {

using namespace radix;  // NOLINT
using project::JoinStrategy;
using project::SideStrategy;

constexpr size_t kPi = 4;

workload::JoinWorkload MakeW(size_t n) {
  workload::JoinWorkloadSpec spec;
  spec.cardinality = n;
  spec.num_attrs = kPi + 1;
  spec.hit_rate = 1.0;
  spec.build_nsm = false;  // DSM-only experiment
  return workload::MakeJoinWorkload(spec);
}

/// Planned DSM-post (the paper's annotated curve): the planner picks the
/// side codes by cardinality.
void BM_DsmPostPlanned(benchmark::State& state) {
  size_t n = radix::bench::ScaledN(static_cast<size_t>(state.range(0)),
                                   4'000'000);
  workload::JoinWorkload w = MakeW(n);
  engine::QuerySpec spec;
  spec.pi_left = kPi;
  spec.pi_right = kPi;
  std::string code;
  for (auto _ : state) {
    project::QueryRun run = radix::bench::BenchEngine().Execute(w, spec);
    code = run.detail;
    benchmark::DoNotOptimize(run.checksum);
  }
  state.SetLabel(code);  // the u/u, c/u, c/d, s/d annotation
  state.counters["N"] = static_cast<double>(n);
}

/// Forced side-code variants, to expose the crossovers between codes.
void RunForced(benchmark::State& state, SideStrategy left,
               SideStrategy right) {
  size_t n = radix::bench::ScaledN(static_cast<size_t>(state.range(0)),
                                   4'000'000);
  workload::JoinWorkload w = MakeW(n);
  engine::QuerySpec spec;
  spec.pi_left = kPi;
  spec.pi_right = kPi;
  spec.plan_sides = false;
  spec.left = left;
  spec.right = right;
  for (auto _ : state) {
    project::QueryRun run = radix::bench::BenchEngine().Execute(w, spec);
    benchmark::DoNotOptimize(run.checksum);
  }
  state.counters["N"] = static_cast<double>(n);
}

void BM_DsmPost_uu(benchmark::State& s) {
  RunForced(s, SideStrategy::kUnsorted, SideStrategy::kUnsorted);
}
void BM_DsmPost_cu(benchmark::State& s) {
  RunForced(s, SideStrategy::kClustered, SideStrategy::kUnsorted);
}
void BM_DsmPost_cd(benchmark::State& s) {
  RunForced(s, SideStrategy::kClustered, SideStrategy::kDecluster);
}
void BM_DsmPost_sd(benchmark::State& s) {
  RunForced(s, SideStrategy::kSorted, SideStrategy::kDecluster);
}

void Args(benchmark::internal::Benchmark* b) {
  for (int64_t n : {15'625, 62'500, 250'000, 1'000'000, 4'000'000,
                    16'000'000}) {
    b->Args({n});
  }
  b->Unit(benchmark::kMillisecond)->Iterations(1);
}

}  // namespace

BENCHMARK(BM_DsmPostPlanned)->Apply(Args);
BENCHMARK(BM_DsmPost_uu)->Apply(Args);
BENCHMARK(BM_DsmPost_cu)->Apply(Args);
BENCHMARK(BM_DsmPost_cd)->Apply(Args);
BENCHMARK(BM_DsmPost_sd)->Apply(Args);

BENCHMARK_MAIN();
